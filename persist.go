package sigtable

import (
	"bytes"
	"encoding/binary"
	"fmt"
	"io"

	"sigtable/internal/core"
	"sigtable/internal/shard"
)

// Persistence. The dataset and the index structure are stored
// separately: the dataset with (*Dataset).WriteTo / ReadDataset, the
// index with WriteTo / ReadIndex (single) or ReadSharded, or ReadEngine
// for either. The index file references transactions by TID, so
// loading requires the matching dataset.
//
// Index files start with a versioned envelope:
//
//	magic   "SGTX" (4 bytes)
//	version u32 (currently 2)
//	kind    u32 (1 = single table, 2 = sharded manifest)
//
// followed by the engine's own image (the core table format, or the
// sharded manifest wrapping one core table per shard). Envelope
// version 2 marks the era whose core images record a page format
// (disk-mode tables may be block-compressed v2); version-1 files are
// still read — their core images predate the field and rebuild under
// the original v1 page layout. Seed-era files written before the
// envelope existed begin directly with the core table's own header;
// the readers sniff the first four bytes and keep accepting that
// headerless layout.

var envelopeMagic = [4]byte{'S', 'G', 'T', 'X'}

const (
	formatVersion    = 2
	minFormatVersion = 1

	kindSingle  = 1
	kindSharded = 2
)

func writeEnvelope(w io.Writer, kind uint32) (int64, error) {
	var hdr [12]byte
	copy(hdr[:4], envelopeMagic[:])
	binary.LittleEndian.PutUint32(hdr[4:8], formatVersion)
	binary.LittleEndian.PutUint32(hdr[8:12], kind)
	n, err := w.Write(hdr[:])
	return int64(n), err
}

// readEnvelope sniffs r for the envelope header. It returns the kind
// and a reader positioned after the header — or, for a legacy
// headerless file, kind 0 and a reader that replays the sniffed bytes
// before the rest of the stream.
func readEnvelope(r io.Reader) (uint32, io.Reader, error) {
	var head [4]byte
	n, err := io.ReadFull(r, head[:])
	if err != nil {
		// A file shorter than any magic: hand the bytes to the core
		// reader for its own (more specific) corruption error.
		return 0, io.MultiReader(bytes.NewReader(head[:n]), r), nil
	}
	if head != envelopeMagic {
		return 0, io.MultiReader(bytes.NewReader(head[:]), r), nil
	}
	var rest [8]byte
	if _, err := io.ReadFull(r, rest[:]); err != nil {
		return 0, nil, fmt.Errorf("sigtable: truncated index envelope: %w", err)
	}
	version := binary.LittleEndian.Uint32(rest[:4])
	if version < minFormatVersion || version > formatVersion {
		return 0, nil, fmt.Errorf("sigtable: index format version %d not supported (have %d)", version, formatVersion)
	}
	kind := binary.LittleEndian.Uint32(rest[4:])
	if kind != kindSingle && kind != kindSharded {
		return 0, nil, fmt.Errorf("sigtable: unknown index kind %d", kind)
	}
	return kind, r, nil
}

// WriteTo serializes the index structure (signature partition,
// activation threshold and entry TID lists) behind the versioned
// envelope. The dataset is not included. An index with pending deletes
// must be Rebuilt first.
func (ix *Index) WriteTo(w io.Writer) (int64, error) {
	ix.mu.RLock()
	defer ix.mu.RUnlock()
	n, err := writeEnvelope(w, kindSingle)
	if err != nil {
		return n, err
	}
	m, err := ix.table.WriteTo(w)
	return n + m, err
}

// WriteTo serializes the sharded index — the envelope, then the shard
// manifest wrapping one core table image per shard. Every shard must
// be tombstone-free (Compact first) and the global TID space hole-free.
func (sx *ShardedIndex) WriteTo(w io.Writer) (int64, error) {
	n, err := writeEnvelope(w, kindSharded)
	if err != nil {
		return n, err
	}
	m, err := sx.x.WriteTo(w)
	return n + m, err
}

// ReadIndex loads a single-table index previously written with
// (*Index).WriteTo, binding it to its dataset. Universe, size and
// coordinate consistency are validated, so passing the wrong dataset
// fails rather than silently corrupting results. Headerless seed-era
// files load transparently; a sharded file is refused with a pointer
// to ReadSharded.
func ReadIndex(r io.Reader, data *Dataset) (*Index, error) {
	kind, body, err := readEnvelope(r)
	if err != nil {
		return nil, err
	}
	if kind == kindSharded {
		return nil, fmt.Errorf("sigtable: file holds a sharded index; load it with ReadSharded (or ReadEngine)")
	}
	table, err := core.ReadTable(body, data)
	if err != nil {
		return nil, err
	}
	return &Index{table: table}, nil
}

// ReadSharded loads a sharded index previously written with
// (*ShardedIndex).WriteTo, binding it to the global dataset.
func ReadSharded(r io.Reader, data *Dataset) (*ShardedIndex, error) {
	kind, body, err := readEnvelope(r)
	if err != nil {
		return nil, err
	}
	switch kind {
	case kindSharded:
		x, err := shard.Read(body, data)
		if err != nil {
			return nil, err
		}
		return &ShardedIndex{x: x}, nil
	case kindSingle:
		return nil, fmt.Errorf("sigtable: file holds a single-table index; load it with ReadIndex (or ReadEngine)")
	default:
		return nil, fmt.Errorf("sigtable: file predates the sharded format; load it with ReadIndex")
	}
}

// ReadEngine loads whichever engine the file holds — single-table
// (including headerless seed-era files) or sharded — and returns it
// behind the common Engine surface.
func ReadEngine(r io.Reader, data *Dataset) (Engine, error) {
	kind, body, err := readEnvelope(r)
	if err != nil {
		return nil, err
	}
	if kind == kindSharded {
		x, err := shard.Read(body, data)
		if err != nil {
			return nil, err
		}
		return &ShardedIndex{x: x}, nil
	}
	table, err := core.ReadTable(body, data)
	if err != nil {
		return nil, err
	}
	return &Index{table: table}, nil
}

// Dynamic maintenance. Mutations take the index's exclusive lock, so
// they are safe to run concurrently with queries: a mutation waits for
// in-flight queries to drain, and queries started after it observe the
// updated index.

// Insert adds a transaction to the index and its dataset, returning
// the assigned TID.
func (ix *Index) Insert(t Transaction) TID {
	ix.mu.Lock()
	defer ix.mu.Unlock()
	return ix.table.Insert(t)
}

// InsertBatch adds several transactions under one exclusive-lock
// acquisition — much cheaper than per-transaction Inserts when queries
// are in flight, since each exclusive acquisition drains them. TIDs
// are returned in argument order.
func (ix *Index) InsertBatch(ts []Transaction) []TID {
	ix.mu.Lock()
	defer ix.mu.Unlock()
	ids := make([]TID, len(ts))
	for i, t := range ts {
		ids[i] = ix.table.Insert(t)
	}
	return ids
}

// Delete tombstones a transaction; it stops appearing in results. It
// reports whether the TID was present and live.
func (ix *Index) Delete(id TID) bool {
	ix.mu.Lock()
	defer ix.mu.Unlock()
	return ix.table.Delete(id)
}

// Live reports the number of non-deleted indexed transactions.
func (ix *Index) Live() int {
	ix.mu.RLock()
	defer ix.mu.RUnlock()
	return ix.table.Live()
}

// Rebuild compacts tombstones and insert overflows into a fresh index
// over a fresh, densely renumbered dataset. The original index remains
// valid (and queryable) afterwards. It reuses the build parallelism
// the table was constructed with; see Compact for the in-place
// variant with an explicit worker count.
func (ix *Index) Rebuild() (*Index, error) {
	ix.mu.RLock()
	defer ix.mu.RUnlock()
	table, err := ix.table.Rebuild()
	if err != nil {
		return nil, err
	}
	stats := ix.buildStats
	stats.coreStats(table.BuildStats())
	return &Index{table: table, buildStats: stats}, nil
}

// Compact rebuilds the index in place over its live transactions,
// compacting tombstones and flushing insert overflows to pages, with
// an explicit build parallelism (0 = GOMAXPROCS, 1 = serial). It holds
// the exclusive lock for the whole rebuild — queries queue behind it —
// the simple trade-off documented in DESIGN.md §4c; a copy-then-swap
// scheme could shrink the exclusive window to the pointer swap at the
// cost of doubling peak memory. TIDs are renumbered densely, exactly
// as by Rebuild.
func (ix *Index) Compact(parallelism int) error {
	ix.mu.Lock()
	defer ix.mu.Unlock()
	table, err := ix.table.RebuildParallel(parallelism)
	if err != nil {
		return err
	}
	if old := ix.table.Store(); old != nil {
		// The swapped-out table is dropped on the floor; its prefetch
		// workers must not linger. The old page file itself stays open
		// (callers holding a Table() reference may still scan it) —
		// only the goroutines are reclaimed.
		old.StopPrefetcher()
	}
	ix.table = table
	ix.buildStats.coreStats(table.BuildStats())
	return nil
}

// Validate runs a full consistency sweep over the index (entry order,
// coordinate agreement, counts, tombstones) and returns the first
// violated invariant, or nil.
func (ix *Index) Validate() error {
	ix.mu.RLock()
	defer ix.mu.RUnlock()
	return ix.table.Validate()
}
