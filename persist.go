package sigtable

import (
	"io"

	"sigtable/internal/core"
)

// Persistence. The dataset and the index structure are stored
// separately: the dataset with (*Dataset).WriteTo / ReadDataset, the
// index with (*Index).WriteTo / ReadIndex. The index file references
// transactions by TID, so loading requires the matching dataset.

// WriteTo serializes the index structure (signature partition,
// activation threshold and entry TID lists). The dataset is not
// included. An index with pending deletes must be Rebuilt first.
func (ix *Index) WriteTo(w io.Writer) (int64, error) {
	ix.mu.RLock()
	defer ix.mu.RUnlock()
	return ix.table.WriteTo(w)
}

// ReadIndex loads an index previously written with WriteTo, binding it
// to its dataset. Universe, size and coordinate consistency are
// validated, so passing the wrong dataset fails rather than silently
// corrupting results.
func ReadIndex(r io.Reader, data *Dataset) (*Index, error) {
	table, err := core.ReadTable(r, data)
	if err != nil {
		return nil, err
	}
	return &Index{table: table}, nil
}

// Dynamic maintenance. Mutations take the index's exclusive lock, so
// they are safe to run concurrently with queries: a mutation waits for
// in-flight queries to drain, and queries started after it observe the
// updated index.

// Insert adds a transaction to the index and its dataset, returning
// the assigned TID.
func (ix *Index) Insert(t Transaction) TID {
	ix.mu.Lock()
	defer ix.mu.Unlock()
	return ix.table.Insert(t)
}

// InsertBatch adds several transactions under one exclusive-lock
// acquisition — much cheaper than per-transaction Inserts when queries
// are in flight, since each exclusive acquisition drains them. TIDs
// are returned in argument order.
func (ix *Index) InsertBatch(ts []Transaction) []TID {
	ix.mu.Lock()
	defer ix.mu.Unlock()
	ids := make([]TID, len(ts))
	for i, t := range ts {
		ids[i] = ix.table.Insert(t)
	}
	return ids
}

// Delete tombstones a transaction; it stops appearing in results. It
// reports whether the TID was present and live.
func (ix *Index) Delete(id TID) bool {
	ix.mu.Lock()
	defer ix.mu.Unlock()
	return ix.table.Delete(id)
}

// Live reports the number of non-deleted indexed transactions.
func (ix *Index) Live() int {
	ix.mu.RLock()
	defer ix.mu.RUnlock()
	return ix.table.Live()
}

// Rebuild compacts tombstones and insert overflows into a fresh index
// over a fresh, densely renumbered dataset. The original index remains
// valid (and queryable) afterwards. It reuses the build parallelism
// the table was constructed with; see Compact for the in-place
// variant with an explicit worker count.
func (ix *Index) Rebuild() (*Index, error) {
	ix.mu.RLock()
	defer ix.mu.RUnlock()
	table, err := ix.table.Rebuild()
	if err != nil {
		return nil, err
	}
	stats := ix.buildStats
	stats.coreStats(table.BuildStats())
	return &Index{table: table, buildStats: stats}, nil
}

// Compact rebuilds the index in place over its live transactions,
// compacting tombstones and flushing insert overflows to pages, with
// an explicit build parallelism (0 = GOMAXPROCS, 1 = serial). It holds
// the exclusive lock for the whole rebuild — queries queue behind it —
// the simple trade-off documented in DESIGN.md §4c; a copy-then-swap
// scheme could shrink the exclusive window to the pointer swap at the
// cost of doubling peak memory. TIDs are renumbered densely, exactly
// as by Rebuild.
func (ix *Index) Compact(parallelism int) error {
	ix.mu.Lock()
	defer ix.mu.Unlock()
	table, err := ix.table.RebuildParallel(parallelism)
	if err != nil {
		return err
	}
	ix.table = table
	ix.buildStats.coreStats(table.BuildStats())
	return nil
}

// Validate runs a full consistency sweep over the index (entry order,
// coordinate agreement, counts, tombstones) and returns the first
// violated invariant, or nil.
func (ix *Index) Validate() error {
	ix.mu.RLock()
	defer ix.mu.RUnlock()
	return ix.table.Validate()
}
