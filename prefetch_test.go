package sigtable

import (
	"context"
	"math/rand"
	"path/filepath"
	"runtime"
	"sync"
	"testing"
	"time"
)

// The public-API half of the prefetch test suite: the pipeline's
// byte-identity and goroutine hygiene proven through Index and
// ShardedIndex rather than the internal core.Table. `make
// race-prefetch` runs these under the race detector.

// waitGoroutines polls until the live goroutine count drops to at most
// want, failing after five seconds. Counting goroutines is inherently
// racy against the runtime's own background work, so the assertions
// here compare against a baseline taken in the same test.
func waitGoroutines(t *testing.T, label string, want int) {
	t.Helper()
	deadline := time.Now().Add(5 * time.Second)
	for runtime.NumGoroutine() > want {
		if time.Now().After(deadline) {
			t.Fatalf("%s: %d goroutines still live, want <= %d", label, runtime.NumGoroutine(), want)
		}
		time.Sleep(time.Millisecond)
	}
}

// TestPrefetchHammer is the disk-mode concurrency proof for the
// prefetch pipeline: parallel queries at several readahead depths race
// inserts, deletes and full compactions against a file-backed pooled
// store with prefetch workers attached. Compact swaps the table (and
// stops the old store's workers) while searches are mid-flight;
// nothing here may race, deadlock, leak, or corrupt the index.
func TestPrefetchHammer(t *testing.T) {
	data := testDataset(t, 400, 31)
	idx, err := BuildIndex(data, IndexOptions{
		SignatureCardinality: 8,
		PageSize:             256,
		PageFile:             filepath.Join(t.TempDir(), "pages.dat"),
		BufferPoolPages:      64,
		DecodeCacheBytes:     1 << 17,
		PrefetchWorkers:      2,
	})
	if err != nil {
		t.Fatal(err)
	}
	defer idx.Close()
	universe := data.UniverseSize()
	newTarget := func(rng *rand.Rand) Transaction {
		items := make([]Item, 0, 8)
		for len(items) < 3 {
			items = append(items, Item(rng.Intn(universe)))
		}
		return NewTransaction(items...)
	}

	const (
		queryWorkers   = 4
		queriesPerGoro = 50
		inserts        = 120
		deleteAttempts = 80
		compactions    = 3
	)

	var wg sync.WaitGroup
	fail := make(chan error, queryWorkers+3)

	for w := 0; w < queryWorkers; w++ {
		wg.Add(1)
		go func(seed int64) {
			defer wg.Done()
			rng := rand.New(rand.NewSource(seed))
			for i := 0; i < queriesPerGoro; i++ {
				target := newTarget(rng)
				// Cycle the readahead contract: adaptive, fixed, disabled.
				opt := SearchOptions{K: 3, ReadaheadDepth: []int{0, 4, -1}[i%3]}
				switch i % 3 {
				case 0:
					if _, err := idx.Query(context.Background(), target, Jaccard{}, opt); err != nil {
						fail <- err
						return
					}
				case 1:
					if _, err := idx.MultiQuery(context.Background(), []Transaction{target, newTarget(rng)}, Cosine{}, opt); err != nil {
						fail <- err
						return
					}
				case 2:
					opt.SharedScan = i%2 == 0
					opt.Parallelism = 2
					if _, err := idx.BatchQuery(context.Background(), []Transaction{target, newTarget(rng)}, Jaccard{}, opt); err != nil {
						fail <- err
						return
					}
				}
			}
		}(int64(300 + w))
	}

	wg.Add(1)
	go func() {
		defer wg.Done()
		rng := rand.New(rand.NewSource(9))
		for i := 0; i < inserts; i++ {
			idx.Insert(newTarget(rng))
		}
	}()

	wg.Add(1)
	go func() {
		defer wg.Done()
		rng := rand.New(rand.NewSource(10))
		for i := 0; i < deleteAttempts; i++ {
			idx.Delete(TID(rng.Intn(400)))
		}
	}()

	wg.Add(1)
	go func() {
		defer wg.Done()
		for i := 0; i < compactions; i++ {
			time.Sleep(5 * time.Millisecond)
			if err := idx.Compact(2); err != nil {
				fail <- err
				return
			}
		}
	}()

	wg.Wait()
	close(fail)
	for err := range fail {
		t.Fatal(err)
	}
	if err := idx.Validate(); err != nil {
		t.Fatalf("index invalid after prefetch hammer: %v", err)
	}
}

// TestPrefetchShardedMatchesSingle extends the sharded/single identity
// property to the prefetch pipeline: a ShardedIndex whose shards carry
// pooled stores with prefetch workers answers byte-identically to a
// plain in-memory Index, at every readahead depth.
func TestPrefetchShardedMatchesSingle(t *testing.T) {
	data := testDataset(t, 1500, 31)
	single, err := BuildIndex(data, IndexOptions{SignatureCardinality: 10})
	if err != nil {
		t.Fatal(err)
	}
	sharded, err := NewSharded(testDataset(t, 1500, 31), IndexOptions{
		SignatureCardinality: 10,
		Shards:               3,
		PageSize:             256,
		BufferPoolPages:      2048,
		PrefetchWorkers:      2,
	})
	if err != nil {
		t.Fatal(err)
	}
	defer sharded.Close()

	rng := rand.New(rand.NewSource(77))
	for i := 0; i < 12; i++ {
		target := data.Get(TID(rng.Intn(1500)))
		for _, depth := range []int{0, 1, 8, -1} {
			opt := SearchOptions{K: 5, ReadaheadDepth: depth}
			want, err := single.Query(context.Background(), target, Cosine{}, opt)
			if err != nil {
				t.Fatal(err)
			}
			got, err := sharded.Query(context.Background(), target, Cosine{}, opt)
			if err != nil {
				t.Fatal(err)
			}
			equalResults(t, "prefetch sharded", want, got)
		}
	}
}

// TestPrefetchCloseReleasesGoroutines: Index.Close and
// ShardedIndex.Close must reap every prefetch worker, and a Compact
// table swap must stop the replaced store's workers instead of
// stranding them behind the new table.
func TestPrefetchCloseReleasesGoroutines(t *testing.T) {
	base := runtime.NumGoroutine()
	data := testDataset(t, 300, 31)
	run := func(rng *rand.Rand, q interface {
		Query(context.Context, Transaction, SimilarityFunc, SearchOptions) (Result, error)
	}) {
		t.Helper()
		for i := 0; i < 8; i++ {
			target := data.Get(TID(rng.Intn(300)))
			if _, err := q.Query(context.Background(), target, Jaccard{}, SearchOptions{K: 3, ReadaheadDepth: 4}); err != nil {
				t.Fatal(err)
			}
		}
	}
	rng := rand.New(rand.NewSource(88))

	idx, err := BuildIndex(data, IndexOptions{
		SignatureCardinality: 8,
		PageSize:             256,
		PageFile:             filepath.Join(t.TempDir(), "pages.dat"),
		BufferPoolPages:      64,
		PrefetchWorkers:      2,
	})
	if err != nil {
		t.Fatal(err)
	}
	run(rng, idx)
	// Compact swaps in a fresh table; the old store's workers must be
	// gone once the swap settles, so repeated compactions cannot
	// accumulate goroutines.
	withWorkers := runtime.NumGoroutine()
	for i := 0; i < 3; i++ {
		if err := idx.Compact(1); err != nil {
			t.Fatal(err)
		}
		run(rng, idx)
	}
	waitGoroutines(t, "after compactions", withWorkers)
	if err := idx.Close(); err != nil {
		t.Fatal(err)
	}
	waitGoroutines(t, "after Index.Close", base)

	sharded, err := NewSharded(testDataset(t, 300, 31), IndexOptions{
		SignatureCardinality: 8,
		Shards:               3,
		PageSize:             256,
		BufferPoolPages:      256,
		PrefetchWorkers:      2,
	})
	if err != nil {
		t.Fatal(err)
	}
	run(rng, sharded)
	if err := sharded.Close(); err != nil {
		t.Fatal(err)
	}
	waitGoroutines(t, "after ShardedIndex.Close", base)
}
