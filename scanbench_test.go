package sigtable

import (
	"os"
	"path/filepath"
	"sync"
	"testing"

	"sigtable/internal/bitset"
	"sigtable/internal/pager"
	"sigtable/internal/txn"
)

// Page-codec micro-benchmarks: the raw decode and fused decode-and-
// score throughput of the two on-page layouts, over the standard micro
// dataset. BenchmarkScanList is the materializing path (every record
// rebuilt as a []txn.Item); BenchmarkFusedScore is the v2 tentpole —
// match/hamming computed against a target bitmap while unpacking, no
// per-record slice. The -disk variants run against a real page file so
// every page fetch is a positional pread.

const scanBenchListLen = 512

// scanFixture is one store per (format, backing) with the micro
// dataset's 50k transactions written as lists of scanBenchListLen
// records.
type scanFixture struct {
	store *pager.Store
	lists []pager.List
}

var scanBenchOnce sync.Once
var scanBench map[string]*scanFixture

func scanBenchSetup(b *testing.B) map[string]*scanFixture {
	scanBenchOnce.Do(func() {
		m := microSetup(b)
		dir, err := os.MkdirTemp("", "sigtable-scanbench-")
		if err != nil {
			b.Fatal(err)
		}
		scanBench = make(map[string]*scanFixture)
		for _, cfg := range []struct {
			name   string
			format pager.Format
			disk   bool
		}{
			{"v1", pager.FormatV1, false},
			{"v2", pager.FormatV2, false},
			{"v1-disk", pager.FormatV1, true},
			{"v2-disk", pager.FormatV2, true},
		} {
			var store *pager.Store
			if cfg.disk {
				store, err = pager.NewFileStoreFormat(filepath.Join(dir, cfg.name+".dat"), 4096, cfg.format)
				if err != nil {
					b.Fatal(err)
				}
			} else {
				store = pager.NewStoreFormat(4096, cfg.format)
			}
			fix := &scanFixture{store: store}
			n := m.data.Len()
			for lo := 0; lo < n; lo += scanBenchListLen {
				hi := lo + scanBenchListLen
				if hi > n {
					hi = n
				}
				tids := make([]txn.TID, 0, hi-lo)
				txns := make([]txn.Transaction, 0, hi-lo)
				for id := lo; id < hi; id++ {
					tids = append(tids, txn.TID(id))
					txns = append(txns, m.data.Get(txn.TID(id)))
				}
				l, err := store.WriteList(tids, txns)
				if err != nil {
					b.Fatal(err)
				}
				fix.lists = append(fix.lists, l)
			}
			store.Seal()
			scanBench[cfg.name] = fix
		}
	})
	return scanBench
}

// BenchmarkScanList decodes every list in the store through the
// materializing ScanList path. One iteration = one full pass over the
// 50k-transaction dataset.
func BenchmarkScanList(b *testing.B) {
	fixtures := scanBenchSetup(b)
	for _, name := range []string{"v1", "v2", "v1-disk", "v2-disk"} {
		fix := fixtures[name]
		b.Run(name, func(b *testing.B) {
			b.ReportAllocs()
			for i := 0; i < b.N; i++ {
				sum := 0
				for _, l := range fix.lists {
					err := fix.store.ScanList(l, nil, func(id txn.TID, t txn.Transaction) bool {
						sum += len(t)
						return true
					})
					if err != nil {
						b.Fatal(err)
					}
				}
				if sum == 0 {
					b.Fatal("scanned nothing")
				}
			}
		})
	}
}

// BenchmarkFusedScore runs the fused decode-and-score kernel over
// every list: match and hamming against a pooled target bitmap,
// computed while unpacking. One iteration = one full scoring pass.
func BenchmarkFusedScore(b *testing.B) {
	fixtures := scanBenchSetup(b)
	m := microSetup(b)
	mask := bitset.New(m.data.UniverseSize())
	target := m.queries[0]
	target.SetBits(mask)
	defer target.ClearBits(mask)
	for _, name := range []string{"v1", "v2", "v1-disk", "v2-disk"} {
		fix := fixtures[name]
		b.Run(name, func(b *testing.B) {
			b.ReportAllocs()
			for i := 0; i < b.N; i++ {
				acc := 0
				for _, l := range fix.lists {
					err := fix.store.ScanListStats(l, nil, mask, len(target), func(id txn.TID, match, hamming int) bool {
						acc += match - hamming
						return true
					})
					if err != nil {
						b.Fatal(err)
					}
				}
			}
		})
	}
}
