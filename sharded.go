package sigtable

import (
	"context"
	"io"
	"sync"

	"sigtable/internal/shard"
)

// Engine is the query surface shared by the two index engines: the
// single-table *Index and the scatter-gather *ShardedIndex. Servers
// and tools that only search, mutate and persist can hold an Engine
// and accept either; engine-specific surfaces (Index.Table,
// ShardedIndex.ShardStats, Rebalance) stay on the concrete types.
//
// Both engines return byte-identical results for the same data — same
// neighbors, costs and certificates — which the test suite asserts by
// property testing; only the execution-report fields (Workers,
// PagesRead, EntriesSpeculated) reflect the engine.
type Engine interface {
	Query(ctx context.Context, target Transaction, f SimilarityFunc, opt SearchOptions) (Result, error)
	Nearest(ctx context.Context, target Transaction, f SimilarityFunc) (TID, float64, error)
	MultiQuery(ctx context.Context, targets []Transaction, f SimilarityFunc, opt SearchOptions) (Result, error)
	RangeQuery(ctx context.Context, target Transaction, constraints []RangeConstraint, opt SearchOptions) (RangeResult, error)
	BatchQuery(ctx context.Context, targets []Transaction, f SimilarityFunc, opt SearchOptions, legacy ...BatchOptions) ([]Result, error)
	Explain(target Transaction, f SimilarityFunc) Explanation

	Insert(t Transaction) TID
	InsertBatch(ts []Transaction) []TID
	Delete(id TID) bool
	Compact(parallelism int) error

	K() int
	Len() int
	Live() int
	NumEntries() int
	Signatures() [][]Item
	Items(id TID) Transaction
	BuildStats() BuildStats
	DirectoryStats() DirectoryStats
	SnapshotVersion() uint64
	OverflowStats() OverflowStats
	Validate() error
	WriteTo(w io.Writer) (int64, error)

	// Close releases disk resources: prefetch workers stop and page
	// files close. In-memory engines are a no-op. Idempotent.
	Close() error
}

var (
	_ Engine = (*Index)(nil)
	_ Engine = (*ShardedIndex)(nil)
)

// ShardedIndex partitions the transactions across S sub-indexes, each
// a full signature table with its own pager store and decode cache,
// behind the same query surface as Index. Queries scatter across the
// shards concurrently and gather into results byte-identical to a
// single index over the same data; mutations publish a new per-shard
// snapshot under the owning shard's writer mutex, so an insert never
// blocks queries — on its own shard or any other. See DESIGN.md §4e
// for the architecture and the merge argument, §4i for the snapshot
// protocol.
//
// A ShardedIndex is safe for concurrent use; all coordination lives in
// the shard engine (per-shard writer mutexes plus a routing lock that
// queries never touch).
type ShardedIndex struct {
	x *shard.Index

	statsMu    sync.Mutex // guards buildStats (refreshed by Compact/Rebalance)
	buildStats BuildStats
}

// ShardStats is one shard's health snapshot: sizes, query fan-out
// count, accumulated lock wait and pages read — the backing data of
// the sigtable_shard_* metric family.
type ShardStats = shard.Stats

// NewSharded builds a sharded index over the dataset. The signature
// partition and activation threshold are mined ONCE from the full
// dataset (they must be shared by every shard for results to merge
// exactly), then global TIDs [0, n) are split into opt.Shards
// contiguous ranges, each indexed independently. 0 and 1 shards both
// build a one-shard engine. A non-empty PageFile becomes per-shard
// files PageFile+".s<i>"; the buffer-pool and decode-cache budgets are
// divided across the shards.
func NewSharded(d *Dataset, opt IndexOptions) (*ShardedIndex, error) {
	shards := opt.Shards
	if shards < 1 {
		shards = 1
	}
	part, r, stats, err := minePartition(d, &opt)
	if err != nil {
		return nil, err
	}
	format, err := opt.PageFormat.pagerFormat()
	if err != nil {
		return nil, err
	}
	x, err := shard.New(d, part, shard.Options{
		Shards:              shards,
		ActivationThreshold: r,
		PageSize:            opt.PageSize,
		PageFile:            opt.PageFile,
		BufferPoolPages:     opt.BufferPoolPages,
		DecodeCacheBytes:    opt.DecodeCacheBytes,
		PageFormat:          format,
		BuildParallelism:    opt.BuildParallelism,
		PrefetchWorkers:     opt.PrefetchWorkers,
		FlushThreshold:      opt.FlushThreshold,
	})
	if err != nil {
		return nil, err
	}
	stats.coreStats(x.CoreBuildStats())
	return &ShardedIndex{x: x, buildStats: stats}, nil
}

// Shards reports the shard count.
func (sx *ShardedIndex) Shards() int { return sx.x.Shards() }

// K reports the signature cardinality.
func (sx *ShardedIndex) K() int { return sx.x.K() }

// Len reports the size of the global TID space (including tombstoned
// and compacted-away TIDs).
func (sx *ShardedIndex) Len() int { return sx.x.Len() }

// Live reports the live transactions across all shards.
func (sx *ShardedIndex) Live() int { return sx.x.Live() }

// NumEntries reports the distinct occupied supercoordinates across all
// shards — the same count a single index over the data would have.
func (sx *ShardedIndex) NumEntries() int { return sx.x.NumEntries() }

// Signatures returns the item sets of the K signatures (read-only).
func (sx *ShardedIndex) Signatures() [][]Item { return sx.x.Partition().Sets() }

// Items returns the transaction stored under the global TID, or nil if
// it is out of range or was compacted away.
func (sx *ShardedIndex) Items(id TID) Transaction { return sx.x.Items(id) }

// BuildStats reports the construction wall times: mining and
// partitioning once, the core phases summed across shard builds.
func (sx *ShardedIndex) BuildStats() BuildStats {
	sx.statsMu.Lock()
	defer sx.statsMu.Unlock()
	return sx.buildStats
}

// ShardStats snapshots every shard's counters in shard order.
func (sx *ShardedIndex) ShardStats() []ShardStats { return sx.x.Stats() }

// DirectoryStats aggregates the per-shard entry directories (slots and
// bytes summed; the ranking counters are process-wide and reported
// once).
func (sx *ShardedIndex) DirectoryStats() DirectoryStats { return sx.x.DirectoryStats() }

// Query runs the k-NN search scattered across all shards; semantics
// (contexts, certificates, errors) match Index.Query exactly, and the
// result is byte-identical to it. SearchOptions.Parallelism is ignored
// — the scatter width is the shard count.
func (sx *ShardedIndex) Query(ctx context.Context, target Transaction, f SimilarityFunc, opt SearchOptions) (Result, error) {
	return sx.x.Query(ctx, target, f, opt.query())
}

// Nearest returns the single most similar transaction; see
// Index.Nearest.
func (sx *ShardedIndex) Nearest(ctx context.Context, target Transaction, f SimilarityFunc) (TID, float64, error) {
	return sx.x.Nearest(ctx, target, f)
}

// MultiQuery finds the k transactions maximizing the average
// similarity to several targets; see Index.MultiQuery.
func (sx *ShardedIndex) MultiQuery(ctx context.Context, targets []Transaction, f SimilarityFunc, opt SearchOptions) (Result, error) {
	return sx.x.MultiQuery(ctx, targets, f, opt.query())
}

// RangeQuery returns all transactions meeting every constraint; see
// Index.RangeQuery.
func (sx *ShardedIndex) RangeQuery(ctx context.Context, target Transaction, constraints []RangeConstraint, opt SearchOptions) (RangeResult, error) {
	return sx.x.RangeQuery(ctx, target, constraints, opt.ranged())
}

// BatchQuery answers one k-NN query per target over a worker pool,
// each query scatter-gathering across the shards; the calling
// conventions match Index.BatchQuery. The shared-scan engine is a
// single-table optimization — SharedScan falls back to independent
// queries here (the per-shard fan-out already amortizes I/O).
func (sx *ShardedIndex) BatchQuery(ctx context.Context, targets []Transaction, f SimilarityFunc, opt SearchOptions, legacy ...BatchOptions) ([]Result, error) {
	_, qopt, pool := batchPlan(opt, legacy)
	return sx.x.BatchQuery(ctx, targets, f, qopt.query(), pool)
}

// Explain returns the bound landscape a query for this target would
// see over the union of shard entries; see Index.Explain.
func (sx *ShardedIndex) Explain(target Transaction, f SimilarityFunc) Explanation {
	return sx.x.Explain(target, f)
}

// SnapshotVersion sums the per-shard snapshot versions — a monotone
// counter that advances with every published mutation across the
// engine.
func (sx *ShardedIndex) SnapshotVersion() uint64 { return sx.x.SnapshotVersion() }

// OverflowStats aggregates the shards' overflow-flush accounting.
func (sx *ShardedIndex) OverflowStats() OverflowStats { return sx.x.OverflowStats() }

// Insert adds a transaction, returning its global TID. Only the
// routing table and the owning shard's writer mutex are taken: queries
// — on any shard — are never blocked.
func (sx *ShardedIndex) Insert(t Transaction) TID { return sx.x.Insert(t) }

// InsertBatch adds several transactions under one routing-lock
// acquisition, publishing one new snapshot per touched shard. TIDs are
// returned in argument order.
func (sx *ShardedIndex) InsertBatch(ts []Transaction) []TID { return sx.x.InsertBatch(ts) }

// Delete tombstones the transaction at the global TID, reporting
// whether it was present and live. Only the owning shard's writer
// mutex is taken; queries are never blocked.
func (sx *ShardedIndex) Delete(id TID) bool { return sx.x.Delete(id) }

// CompactShard rebuilds one shard over its live transactions,
// compacting tombstones and flushing insert overflows. Unlike
// Index.Compact, global TIDs are PRESERVED — the shard remaps its
// local TIDs — and queries on the other shards keep running.
func (sx *ShardedIndex) CompactShard(i, parallelism int) error {
	return sx.x.CompactShard(i, parallelism)
}

// Compact compacts every shard in turn (see CompactShard). Global
// TIDs are preserved; between shards, queries proceed normally.
func (sx *ShardedIndex) Compact(parallelism int) error {
	for i := 0; i < sx.x.Shards(); i++ {
		if err := sx.x.CompactShard(i, parallelism); err != nil {
			return err
		}
	}
	sx.refreshCoreStats()
	return nil
}

// Rebalance redistributes all live transactions into equal-size
// contiguous runs and rebuilds every shard — the heavyweight fix for
// shards drifting apart after skewed inserts and deletes. Global TIDs
// are preserved; the whole index is locked for the duration.
func (sx *ShardedIndex) Rebalance(parallelism int) error {
	if err := sx.x.Rebalance(parallelism); err != nil {
		return err
	}
	sx.refreshCoreStats()
	return nil
}

// refreshCoreStats folds the rebuilt shard tables' phase times into
// buildStats; Compact and Rebalance may run concurrently with each
// other and with BuildStats readers.
func (sx *ShardedIndex) refreshCoreStats() {
	sx.statsMu.Lock()
	defer sx.statsMu.Unlock()
	sx.buildStats.coreStats(sx.x.CoreBuildStats())
}

// Validate runs each shard's consistency sweep plus the cross-shard
// routing invariants, returning the first violation.
func (sx *ShardedIndex) Validate() error { return sx.x.Validate() }

// Close releases every shard's disk resources — prefetch workers stop
// (and are waited for) and per-shard page files close. Queries must
// have drained. Close is idempotent; the first error is returned.
func (sx *ShardedIndex) Close() error { return sx.x.Close() }
