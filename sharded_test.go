package sigtable

import (
	"bytes"
	"context"
	"math/rand"
	"strings"
	"testing"
)

// equalResults compares every deterministic Result field; Workers,
// PagesRead and EntriesSpeculated are execution reports and
// legitimately differ between engines.
func equalResults(t *testing.T, label string, want, got Result) {
	t.Helper()
	if len(want.Neighbors) != len(got.Neighbors) {
		t.Fatalf("%s: neighbor counts %d vs %d", label, len(want.Neighbors), len(got.Neighbors))
	}
	for i := range want.Neighbors {
		if want.Neighbors[i] != got.Neighbors[i] {
			t.Fatalf("%s: neighbor %d: %+v vs %+v", label, i, want.Neighbors[i], got.Neighbors[i])
		}
	}
	if want.Scanned != got.Scanned || want.EntriesScanned != got.EntriesScanned ||
		want.EntriesPruned != got.EntriesPruned || want.Certified != got.Certified ||
		want.Interrupted != got.Interrupted || want.BestPossible != got.BestPossible {
		t.Fatalf("%s: cost/certificate fields differ:\nsingle  %+v\nsharded %+v", label, want, got)
	}
}

// TestShardedMatchesSingle is the public half of the identity
// property: a ShardedIndex built by NewSharded answers every query
// byte-identically to the single-table BuildIndex over the same data,
// for several shard counts, through interleaved mutations applied to
// both engines.
func TestShardedMatchesSingle(t *testing.T) {
	for _, S := range []int{1, 2, 3, 7} {
		// Both engines get their own pristine dataset copy: the mutation
		// phase below appends to the backing dataset, so neither instance
		// can be reused across shard counts.
		data := testDataset(t, 2000, 31)
		single, err := BuildIndex(data, IndexOptions{SignatureCardinality: 10})
		if err != nil {
			t.Fatal(err)
		}
		opt := IndexOptions{SignatureCardinality: 10, Shards: S}
		sharded, err := NewSharded(testDataset(t, 2000, 31), opt)
		if err != nil {
			t.Fatal(err)
		}
		if sharded.Shards() != S {
			t.Fatalf("Shards() = %d, want %d", sharded.Shards(), S)
		}

		rng := rand.New(rand.NewSource(int64(40 + S)))
		check := func(stage string) {
			t.Helper()
			for i := 0; i < 6; i++ {
				target := data.Get(TID(rng.Intn(2000)))
				for _, f := range []SimilarityFunc{Cosine{}, Jaccard{}, MatchHammingRatio{}} {
					sOpt := SearchOptions{K: 1 + rng.Intn(6)}
					if rng.Intn(2) == 0 {
						sOpt.SortBy = ByCoordSimilarity
					}
					if rng.Intn(3) == 0 {
						sOpt.MaxScanFraction = 0.05 + rng.Float64()*0.4
					}
					want, err := single.Query(context.Background(), target, f, sOpt)
					if err != nil {
						t.Fatal(err)
					}
					got, err := sharded.Query(context.Background(), target, f, sOpt)
					if err != nil {
						t.Fatal(err)
					}
					equalResults(t, stage, want, got)
				}
			}
			// Multi-target and range paths.
			targets := []Transaction{data.Get(7), data.Get(1234)}
			want, err := single.MultiQuery(context.Background(), targets, Dice{}, SearchOptions{K: 4})
			if err != nil {
				t.Fatal(err)
			}
			got, err := sharded.MultiQuery(context.Background(), targets, Dice{}, SearchOptions{K: 4})
			if err != nil {
				t.Fatal(err)
			}
			equalResults(t, stage+"/multi", want, got)

			constraints := []RangeConstraint{{F: Jaccard{}, Threshold: 0.4}}
			wr, err := single.RangeQuery(context.Background(), data.Get(7), constraints, SearchOptions{})
			if err != nil {
				t.Fatal(err)
			}
			gr, err := sharded.RangeQuery(context.Background(), data.Get(7), constraints, SearchOptions{})
			if err != nil {
				t.Fatal(err)
			}
			if len(wr.TIDs) != len(gr.TIDs) || wr.Scanned != gr.Scanned ||
				wr.EntriesScanned != gr.EntriesScanned || wr.EntriesPruned != gr.EntriesPruned {
				t.Fatalf("%s/range: %+v vs %+v", stage, wr, gr)
			}
			for i := range wr.TIDs {
				if wr.TIDs[i] != gr.TIDs[i] {
					t.Fatalf("%s/range: tid %d: %d vs %d", stage, i, wr.TIDs[i], gr.TIDs[i])
				}
			}
		}

		check("fresh")

		// Interleave inserts and deletes, mirrored on both engines, and
		// require identity to hold at every step boundary.
		mrng := rand.New(rand.NewSource(int64(90 + S)))
		for step := 0; step < 30; step++ {
			if mrng.Intn(3) == 0 {
				id := TID(mrng.Intn(single.Len()))
				a, b := single.Delete(id), sharded.Delete(id)
				if a != b {
					t.Fatalf("delete %d: single %v, sharded %v", id, a, b)
				}
			} else {
				tr := data.Get(TID(mrng.Intn(2000)))
				a, b := single.Insert(tr), sharded.Insert(tr)
				if a != b {
					t.Fatalf("insert assigned %d vs %d", a, b)
				}
			}
		}
		if err := sharded.Validate(); err != nil {
			t.Fatal(err)
		}
		check("mutated")
	}
}

// TestBatchQueryUnifiedOptions: the single-SearchOptions batch form
// and the deprecated two-struct form return identical results, on both
// engines, and the sharded batch matches the single-table batch.
func TestBatchQueryUnifiedOptions(t *testing.T) {
	data := testDataset(t, 1500, 33)
	single, err := BuildIndex(data, IndexOptions{SignatureCardinality: 9})
	if err != nil {
		t.Fatal(err)
	}
	sharded, err := NewSharded(testDataset(t, 1500, 33), IndexOptions{SignatureCardinality: 9, Shards: 3})
	if err != nil {
		t.Fatal(err)
	}
	targets := make([]Transaction, 10)
	for i := range targets {
		targets[i] = data.Get(TID(i * 100))
	}
	ctx := context.Background()

	unified, err := single.BatchQuery(ctx, targets, Cosine{}, SearchOptions{K: 3, Parallelism: 4})
	if err != nil {
		t.Fatal(err)
	}
	legacy, err := single.BatchQuery(ctx, targets, Cosine{}, QueryOptions{K: 3}, BatchOptions{Parallelism: 4})
	if err != nil {
		t.Fatal(err)
	}
	shared, err := single.BatchQuery(ctx, targets, Cosine{}, SearchOptions{K: 3, SharedScan: true})
	if err != nil {
		t.Fatal(err)
	}
	overShards, err := sharded.BatchQuery(ctx, targets, Cosine{}, SearchOptions{K: 3, Parallelism: 4})
	if err != nil {
		t.Fatal(err)
	}
	for i := range unified {
		equalResults(t, "legacy form", unified[i], legacy[i])
		equalResults(t, "shared scan", unified[i], shared[i])
		equalResults(t, "sharded batch", unified[i], overShards[i])
	}
}

// TestPersistEnvelope: both engines round-trip through the versioned
// envelope, ReadEngine dispatches on the kind, the cross-kind readers
// refuse with a pointer to the right one, and a headerless seed-era
// file still loads.
func TestPersistEnvelope(t *testing.T) {
	data := testDataset(t, 1200, 35)
	single, err := BuildIndex(data, IndexOptions{SignatureCardinality: 9})
	if err != nil {
		t.Fatal(err)
	}
	sharded, err := NewSharded(data, IndexOptions{SignatureCardinality: 9, Shards: 3})
	if err != nil {
		t.Fatal(err)
	}
	target := data.Get(42)
	query := func(e Engine) Result {
		t.Helper()
		res, err := e.Query(context.Background(), target, Jaccard{}, SearchOptions{K: 5})
		if err != nil {
			t.Fatal(err)
		}
		return res
	}

	var sbuf, xbuf bytes.Buffer
	if _, err := single.WriteTo(&sbuf); err != nil {
		t.Fatal(err)
	}
	if _, err := sharded.WriteTo(&xbuf); err != nil {
		t.Fatal(err)
	}

	loadedSingle, err := ReadIndex(bytes.NewReader(sbuf.Bytes()), data)
	if err != nil {
		t.Fatal(err)
	}
	equalResults(t, "single round trip", query(single), query(loadedSingle))

	loadedSharded, err := ReadSharded(bytes.NewReader(xbuf.Bytes()), data)
	if err != nil {
		t.Fatal(err)
	}
	if loadedSharded.Shards() != 3 {
		t.Fatalf("round-tripped shards = %d", loadedSharded.Shards())
	}
	equalResults(t, "sharded round trip", query(sharded), query(loadedSharded))

	// ReadEngine dispatches on the envelope kind.
	e1, err := ReadEngine(bytes.NewReader(sbuf.Bytes()), data)
	if err != nil {
		t.Fatal(err)
	}
	if _, ok := e1.(*Index); !ok {
		t.Fatalf("ReadEngine(single file) = %T", e1)
	}
	e2, err := ReadEngine(bytes.NewReader(xbuf.Bytes()), data)
	if err != nil {
		t.Fatal(err)
	}
	if _, ok := e2.(*ShardedIndex); !ok {
		t.Fatalf("ReadEngine(sharded file) = %T", e2)
	}

	// Cross-kind loads fail loudly, naming the right reader.
	if _, err := ReadIndex(bytes.NewReader(xbuf.Bytes()), data); err == nil || !strings.Contains(err.Error(), "ReadSharded") {
		t.Fatalf("ReadIndex(sharded file) = %v", err)
	}
	if _, err := ReadSharded(bytes.NewReader(sbuf.Bytes()), data); err == nil || !strings.Contains(err.Error(), "ReadIndex") {
		t.Fatalf("ReadSharded(single file) = %v", err)
	}

	// A headerless seed-era file (the raw core table image) loads one
	// format generation back.
	var legacy bytes.Buffer
	if _, err := single.Table().WriteTo(&legacy); err != nil {
		t.Fatal(err)
	}
	loadedLegacy, err := ReadIndex(bytes.NewReader(legacy.Bytes()), data)
	if err != nil {
		t.Fatalf("headerless file refused: %v", err)
	}
	equalResults(t, "legacy round trip", query(single), query(loadedLegacy))
	if _, err := ReadSharded(bytes.NewReader(legacy.Bytes()), data); err == nil {
		t.Fatal("ReadSharded accepted a headerless single-table file")
	}

	// Garbage is rejected, not misparsed.
	if _, err := ReadIndex(bytes.NewReader([]byte("not an index")), data); err == nil {
		t.Fatal("garbage accepted")
	}
}

// TestShardedMaintenance: Engine-level Compact preserves global TIDs
// on the sharded engine (unlike the single index's renumbering),
// Rebalance evens the shards, and ShardStats reports per-shard state.
func TestShardedMaintenance(t *testing.T) {
	data := testDataset(t, 1200, 37)
	sharded, err := NewSharded(data, IndexOptions{SignatureCardinality: 9, Shards: 3})
	if err != nil {
		t.Fatal(err)
	}
	rng := rand.New(rand.NewSource(5))
	for i := 0; i < 150; i++ {
		sharded.Delete(TID(rng.Intn(1200)))
	}
	target := data.Get(11)
	before, err := sharded.Query(context.Background(), target, Cosine{}, SearchOptions{K: 5})
	if err != nil {
		t.Fatal(err)
	}
	if err := sharded.Compact(0); err != nil {
		t.Fatal(err)
	}
	after, err := sharded.Query(context.Background(), target, Cosine{}, SearchOptions{K: 5})
	if err != nil {
		t.Fatal(err)
	}
	// Global TIDs survive compaction, so the neighbor lists agree
	// exactly (entry counters may shrink as emptied entries vanish).
	if len(before.Neighbors) != len(after.Neighbors) {
		t.Fatalf("compaction changed neighbor count: %d vs %d", len(before.Neighbors), len(after.Neighbors))
	}
	for i := range before.Neighbors {
		if before.Neighbors[i] != after.Neighbors[i] {
			t.Fatalf("compaction moved neighbor %d: %+v vs %+v", i, before.Neighbors[i], after.Neighbors[i])
		}
	}
	if err := sharded.Validate(); err != nil {
		t.Fatal(err)
	}

	stats := sharded.ShardStats()
	if len(stats) != 3 {
		t.Fatalf("ShardStats rows = %d", len(stats))
	}
	totalLive := 0
	for i, st := range stats {
		if st.Shard != i {
			t.Fatalf("stats row %d labeled shard %d", i, st.Shard)
		}
		if st.Scans == 0 {
			t.Fatalf("shard %d reports zero query fan-outs", i)
		}
		totalLive += st.Live
	}
	if totalLive != sharded.Live() {
		t.Fatalf("shard live sum %d != Live() %d", totalLive, sharded.Live())
	}

	if err := sharded.Rebalance(0); err != nil {
		t.Fatal(err)
	}
	stats = sharded.ShardStats()
	min, max := stats[0].Live, stats[0].Live
	for _, st := range stats {
		if st.Live < min {
			min = st.Live
		}
		if st.Live > max {
			max = st.Live
		}
	}
	if max-min > 1 {
		t.Fatalf("rebalance left uneven shards: %+v", stats)
	}
	rebal, err := sharded.Query(context.Background(), target, Cosine{}, SearchOptions{K: 5})
	if err != nil {
		t.Fatal(err)
	}
	for i := range before.Neighbors {
		if before.Neighbors[i] != rebal.Neighbors[i] {
			t.Fatalf("rebalance moved neighbor %d", i)
		}
	}
}

// TestEngineInterface drives both engines through the shared Engine
// surface, the contract the server builds on.
func TestEngineInterface(t *testing.T) {
	data := testDataset(t, 800, 39)
	single, err := BuildIndex(data, IndexOptions{SignatureCardinality: 8})
	if err != nil {
		t.Fatal(err)
	}
	sharded, err := NewSharded(testDataset(t, 800, 39), IndexOptions{SignatureCardinality: 8, Shards: 2})
	if err != nil {
		t.Fatal(err)
	}
	for _, e := range []Engine{single, sharded} {
		if e.K() != 8 || e.Len() != 800 || e.Live() != 800 {
			t.Fatalf("%T: K=%d Len=%d Live=%d", e, e.K(), e.Len(), e.Live())
		}
		id := e.Insert(NewTransaction(1, 2, 3))
		if id != 800 {
			t.Fatalf("%T: insert assigned %d", e, id)
		}
		if got := e.Items(id); !got.Equal(NewTransaction(1, 2, 3)) {
			t.Fatalf("%T: Items(%d) = %v", e, id, got)
		}
		if !e.Delete(id) {
			t.Fatalf("%T: delete failed", e)
		}
		if _, _, err := e.Nearest(context.Background(), data.Get(1), Jaccard{}); err != nil {
			t.Fatalf("%T: %v", e, err)
		}
		if ex := e.Explain(data.Get(1), Jaccard{}); len(ex.Entries) == 0 {
			t.Fatalf("%T: empty explanation", e)
		}
		if err := e.Validate(); err != nil {
			t.Fatalf("%T: %v", e, err)
		}
	}
}
