package sigtable

import (
	"context"
	"fmt"
	"io"
	"sync"
	"sync/atomic"
	"time"

	"sigtable/internal/cluster"
	"sigtable/internal/core"
	"sigtable/internal/gen"
	"sigtable/internal/mining"
	"sigtable/internal/pager"
	"sigtable/internal/signature"
	"sigtable/internal/simfun"
	"sigtable/internal/topk"
	"sigtable/internal/txn"
)

// Re-exported data model. Items are dense integers in
// {0, ..., UniverseSize-1}; a Transaction is a strictly increasing item
// slice; a Dataset is an in-memory transaction collection addressed by
// TID.
type (
	// Item identifies a catalog item.
	Item = txn.Item
	// TID identifies a transaction within a Dataset.
	TID = txn.TID
	// Transaction is a sorted set of items bought together.
	Transaction = txn.Transaction
	// Dataset is a collection of transactions over a fixed universe.
	Dataset = txn.Dataset
)

// NewTransaction builds a Transaction from items in any order.
func NewTransaction(items ...Item) Transaction { return txn.New(items...) }

// NewDataset creates an empty dataset over a universe of the given
// size.
func NewDataset(universeSize int) *Dataset { return txn.NewDataset(universeSize) }

// ReadDataset decodes a dataset from its binary encoding (see
// (*Dataset).WriteTo).
func ReadDataset(r io.Reader) (*Dataset, error) { return txn.ReadDataset(r) }

// ReadFIMI parses the standard FIMI text format (one transaction per
// line, space-separated item ids), the distribution format of public
// market-basket datasets. universeSize 0 infers the universe from the
// data.
func ReadFIMI(r io.Reader, universeSize int) (*Dataset, error) {
	return txn.ReadFIMI(r, universeSize)
}

// Match and Hamming are the two set statistics every similarity
// function is defined over.
func Match(a, b Transaction) int   { return txn.Match(a, b) }
func Hamming(a, b Transaction) int { return txn.Hamming(a, b) }

// Similarity functions (see internal/simfun for the monotonicity
// contract each satisfies).
type (
	// SimilarityFunc scores transaction similarity from the match count
	// x and hamming distance y; higher is more similar. It must be
	// non-decreasing in x and non-increasing in y.
	SimilarityFunc = simfun.Func
	// HammingSimilarity ranks by hamming distance (maximization form
	// 1/(1+y)).
	HammingSimilarity = simfun.Hamming
	// MatchSimilarity ranks by match count.
	MatchSimilarity = simfun.Match
	// MatchHammingRatio ranks by x/(1+y).
	MatchHammingRatio = simfun.MatchHammingRatio
	// Cosine ranks by the angle cosine; it is bound to each query
	// target automatically.
	Cosine = simfun.Cosine
	// Jaccard ranks by |S∩T| / |S∪T|.
	Jaccard = simfun.Jaccard
	// Dice ranks by the Sørensen–Dice coefficient.
	Dice = simfun.Dice
)

// Linear is the combinator f(x, y) = A·x − B·y with A, B >= 0.
type Linear = simfun.Linear

// NewLinear validates the weights and returns the Linear combinator.
func NewLinear(a, b float64) (Linear, error) { return simfun.NewLinear(a, b) }

// SimilarityByName resolves a built-in similarity function from its CLI
// name: "hamming", "match", "match/hamming" (or "ratio"), "cosine",
// "jaccard", "dice".
func SimilarityByName(name string) (SimilarityFunc, error) { return simfun.ByName(name) }

// CheckMonotone verifies a custom similarity function satisfies the
// index's monotonicity contract on the grid [0,maxX]×[0,maxY].
func CheckMonotone(f SimilarityFunc, maxX, maxY int) error {
	return simfun.CheckMonotone(f, maxX, maxY)
}

// Query machinery re-exports. Options live in SearchOptions (see
// options.go).
type (
	// Result is a query answer with cost accounting.
	Result = core.Result
	// Candidate pairs a TID with its similarity value.
	Candidate = topk.Candidate
	// RangeConstraint is one (function, threshold) conjunct of a range
	// query.
	RangeConstraint = core.RangeConstraint
	// RangeResult reports range query matches and cost.
	RangeResult = core.RangeResult
	// SortCriterion selects the entry visiting order.
	SortCriterion = core.SortCriterion
)

// Entry visiting orders.
const (
	// ByOptimisticBound visits entries in decreasing bound order (the
	// paper's default).
	ByOptimisticBound = core.ByOptimisticBound
	// ByCoordSimilarity orders entries by supercoordinate similarity.
	ByCoordSimilarity = core.ByCoordSimilarity
)

// GeneratorConfig parameterizes the synthetic market-basket generator
// (the paper's §5 data source); zero fields take the paper's defaults
// (N=1000 items, L=2000 itemsets, T=10, I=6).
type GeneratorConfig = gen.Config

// Generator produces synthetic transactions.
type Generator = gen.Generator

// NewGenerator creates a synthetic data generator.
func NewGenerator(cfg GeneratorConfig) (*Generator, error) { return gen.New(cfg) }

// AutoActivation, as IndexOptions.ActivationThreshold, derives the
// activation threshold from the data: the smallest r keeping the
// average number of activated signatures at or below K/2 (the paper's
// footnote 4 observes that denser data wants higher thresholds).
const AutoActivation = -1

// PageFormat selects the on-page encoding for disk-mode indexes. The
// zero value means "the current default" (PageFormatV2).
type PageFormat int

const (
	// PageFormatV1 is the original layout: each transaction list owns a
	// private page chain of varint-encoded records.
	PageFormatV1 PageFormat = PageFormat(pager.FormatV1)
	// PageFormatV2 is the block-compressed layout: lists are staged as
	// fixed-size frames (delta + bit-packed TIDs and item gaps) and
	// packed back to back across shared pages.
	PageFormatV2 PageFormat = PageFormat(pager.FormatV2)
)

// pagerFormat resolves a public PageFormat to the internal pager
// format, defaulting the zero value to v2.
func (pf PageFormat) pagerFormat() (pager.Format, error) {
	switch pf {
	case 0, PageFormatV2:
		return pager.FormatV2, nil
	case PageFormatV1:
		return pager.FormatV1, nil
	default:
		return 0, fmt.Errorf("sigtable: unknown page format %d", pf)
	}
}

// IndexOptions configures BuildIndex.
type IndexOptions struct {
	// SignatureCardinality is K, the number of signatures the universe
	// is partitioned into; the table has up to 2^K entries. Default 15
	// (the paper's largest evaluated value; pick as large as memory
	// allows).
	SignatureCardinality int
	// ActivationThreshold is the paper's r (default 1). Larger values
	// help for dense data (long transactions); AutoActivation picks a
	// threshold from the data.
	ActivationThreshold int
	// MinPairSupport is the minimum support for a 2-itemset to
	// contribute an edge to the item-correlation graph used by
	// signature construction. Default 0.0005.
	MinPairSupport float64
	// SupportSample caps the transactions sampled for support counting
	// (0 = min(n, 50000)). Supports only steer the partition; a sample
	// suffices.
	SupportSample int
	// Partition, when non-nil, supplies the signature item sets
	// directly and skips mining/clustering (used by ablations and
	// tests). Sets must partition the universe.
	Partition [][]Item
	// PageSize, when positive, stores transaction lists on simulated
	// disk pages of this many bytes and accounts page I/O per query.
	PageSize int
	// PageFile, when non-empty with PageSize, backs the page store with
	// the operating-system file at that path (truncated if it exists)
	// instead of in-memory simulated pages, making every page read a
	// real positional pread. Compact rebuilds into a fresh sibling file
	// (path + ".gN") so in-flight queries on the old table stay valid.
	PageFile string
	// BufferPoolPages, with PageSize, adds a sharded clock-sweep
	// buffer pool of this capacity.
	BufferPoolPages int
	// DecodeCacheBytes, with PageSize, adds a decoded-entry cache of
	// that many bytes: repeat scans of a hot entry's transaction list
	// skip page fetches and varint decoding entirely. Insert, Delete
	// and Compact invalidate it by generation bump, so cached scans can
	// never serve stale data.
	DecodeCacheBytes int64
	// PageFormat selects the on-page encoding used with PageSize:
	// PageFormatV2 (the default) block-compresses records into
	// shared-page frames with delta + bit-packed TIDs and item gaps,
	// while PageFormatV1 keeps the original one-list-per-page-chain
	// varint layout. Queries return identical results either way; v2
	// writes far fewer pages and scans through a fused decode-and-score
	// kernel. Ignored in memory mode (PageSize == 0).
	PageFormat PageFormat
	// BuildParallelism bounds the goroutines used by the build
	// pipeline: support counting, supercoordinate computation, TID
	// grouping and page writing. 0 selects GOMAXPROCS; 1 forces a
	// serial build. The resulting index is identical for every value.
	BuildParallelism int
	// Shards selects the sharded engine: NewSharded partitions the
	// transactions across this many sub-indexes (0 and 1 both mean a
	// single shard). BuildIndex rejects values above 1 — a sharded
	// index is built with NewSharded, which returns the engine type
	// that can answer for it.
	Shards int
	// PrefetchWorkers controls the store's async prefetch pipeline,
	// which overlaps page I/O with scoring by fetching the entry lists
	// a search will visit next (the ranked entry queue names them)
	// into the buffer pool ahead of the scan. It requires
	// BufferPoolPages. 0 auto-attaches 2 workers when the store is
	// file-backed and pooled; a positive count attaches that many
	// workers on any pooled store; a negative value disables
	// prefetching. Per-query readahead is tuned (or disabled) with
	// SearchOptions.ReadaheadDepth. With the sharded engine the count
	// applies per shard. Results are identical at every setting.
	PrefetchWorkers int
	// FlushThreshold sets the per-entry overflow size at which a
	// disk-mode Insert flushes the entry's in-memory overflow to fresh
	// pages appended to its list (amortizing insert cost and keeping
	// memory bounded without a full Compact). 0 selects the core
	// default (128); a negative value disables flushing, restoring the
	// grow-until-Compact behavior. Ignored in memory mode. With the
	// sharded engine the threshold applies per shard. Results are
	// identical at every setting.
	FlushThreshold int
}

func (o IndexOptions) withDefaults(n int) IndexOptions {
	if o.SignatureCardinality == 0 {
		o.SignatureCardinality = 15
	}
	if o.ActivationThreshold == 0 {
		o.ActivationThreshold = 1
	}
	if o.MinPairSupport == 0 {
		o.MinPairSupport = 0.0005
	}
	if o.SupportSample == 0 {
		o.SupportSample = 50000
		if n < o.SupportSample {
			o.SupportSample = n
		}
	}
	return o
}

// Index is the signature table with its construction metadata.
//
// An Index is safe for concurrent use, and queries never take a lock:
// each search loads the atomically published table snapshot and runs
// against that immutable version for its whole duration (additionally
// parallelizable via SearchOptions.Parallelism). Mutations (Insert,
// Delete, Compact) serialize behind a small writer mutex, derive the
// next snapshot by copy-on-write — sharing all untouched structure —
// and publish it with one atomic store; they never wait for queries,
// and queries never wait for them. A query that overlaps a mutation
// sees either entirely the old version or entirely the new one, never
// a mix (snapshot isolation).
type Index struct {
	wmu     sync.Mutex                 // serializes mutations, Compact and Close
	table   atomic.Pointer[core.Table] // current published snapshot
	retired []*core.Table              // tables swapped out by Compact, kept open for in-flight readers (under wmu)

	statsMu    sync.Mutex // guards buildStats (refreshed by Compact)
	buildStats BuildStats
}

// newIndex wraps a built or loaded core table in the public Index.
func newIndex(t *core.Table, stats BuildStats) *Index {
	ix := &Index{buildStats: stats}
	ix.table.Store(t)
	return ix
}

// load returns the current published table snapshot. Callers run
// against the returned table without further synchronization — it is
// immutable (the snapshot mutation protocol never modifies a published
// version).
func (ix *Index) load() *core.Table { return ix.table.Load() }

// BuildStats is the wall-time breakdown of index construction, phase
// by phase. Mining and Partition run once per BuildIndex; the core
// phases (Coords, Group, Write) also rerun on every Compact or
// Rebuild, which refresh those fields.
type BuildStats struct {
	// Mining is the sampled 2-itemset support counting phase.
	Mining time.Duration
	// Partition is the signature clustering phase.
	Partition time.Duration
	// Coords is the supercoordinate computation phase.
	Coords time.Duration
	// Group is the per-entry TID grouping phase.
	Group time.Duration
	// Write is the page staging and installing phase (zero in memory
	// mode).
	Write time.Duration
	// Workers is the resolved build worker count (1 = serial).
	Workers int
}

// Total is the summed wall time across all build phases.
func (s BuildStats) Total() time.Duration {
	return s.Mining + s.Partition + s.Coords + s.Group + s.Write
}

// coreStats folds a core build's phase times into the index stats.
func (s *BuildStats) coreStats(cs core.BuildStats) {
	s.Coords, s.Group, s.Write, s.Workers = cs.Coords, cs.Group, cs.Write, cs.Workers
}

// BuildStats reports the construction wall times of the most recent
// build (initial BuildIndex, refreshed by Compact).
func (ix *Index) BuildStats() BuildStats {
	ix.statsMu.Lock()
	defer ix.statsMu.Unlock()
	return ix.buildStats
}

// BuildIndex constructs a signature table over the dataset:
//
//  1. sample the data to estimate item and 2-itemset supports,
//  2. partition the universe into K signatures by single-linkage
//     clustering with critical-mass peeling (correlated items group
//     together),
//  3. assign every transaction to its supercoordinate's entry.
//
// The similarity function is NOT an input: it is chosen per query.
func BuildIndex(d *Dataset, opt IndexOptions) (*Index, error) {
	if opt.Shards > 1 {
		return nil, fmt.Errorf("sigtable: BuildIndex builds a single-shard index; use NewSharded for %d shards", opt.Shards)
	}
	part, r, stats, err := minePartition(d, &opt)
	if err != nil {
		return nil, err
	}
	format, err := opt.PageFormat.pagerFormat()
	if err != nil {
		return nil, err
	}
	table, err := core.Build(d, part, core.BuildOptions{
		ActivationThreshold: r,
		PageSize:            opt.PageSize,
		PageFile:            opt.PageFile,
		BufferPoolPages:     opt.BufferPoolPages,
		DecodeCacheBytes:    opt.DecodeCacheBytes,
		PageFormat:          format,
		Parallelism:         opt.BuildParallelism,
		PrefetchWorkers:     opt.PrefetchWorkers,
		FlushThreshold:      opt.FlushThreshold,
	})
	if err != nil {
		return nil, err
	}
	stats.coreStats(table.BuildStats())
	return newIndex(table, stats), nil
}

// minePartition runs the data-dependent half of a build — support
// mining, signature clustering, activation-threshold resolution —
// shared by BuildIndex and NewSharded. It normalizes opt in place and
// returns the partition, the resolved threshold and the mining phase
// times.
func minePartition(d *Dataset, opt *IndexOptions) (*signature.Partition, int, BuildStats, error) {
	var stats BuildStats
	if d.Len() == 0 {
		return nil, 0, stats, fmt.Errorf("sigtable: cannot index an empty dataset")
	}
	*opt = opt.withDefaults(d.Len())

	var sets [][]Item
	if opt.Partition != nil {
		sets = opt.Partition
	} else {
		start := time.Now()
		counts := mining.Count(d, mining.CountOptions{
			MaxSample:   opt.SupportSample,
			CountPairs:  true,
			Parallelism: opt.BuildParallelism,
		})
		pairs := counts.FrequentPairs(opt.MinPairSupport)
		stats.Mining = time.Since(start)

		start = time.Now()
		var err error
		sets, err = cluster.Exact(counts.ItemSupports(), pairs, opt.SignatureCardinality)
		if err != nil {
			return nil, 0, stats, fmt.Errorf("sigtable: partitioning items: %w", err)
		}
		stats.Partition = time.Since(start)
	}

	part, err := signature.NewPartition(d.UniverseSize(), sets)
	if err != nil {
		return nil, 0, stats, fmt.Errorf("sigtable: invalid signature partition: %w", err)
	}
	r := opt.ActivationThreshold
	if r == AutoActivation {
		r = core.RecommendActivation(d, part, opt.SupportSample)
	}
	return part, r, stats, nil
}

// K reports the signature cardinality.
func (ix *Index) K() int {
	return ix.load().K()
}

// Len reports the number of indexed transactions.
func (ix *Index) Len() int {
	return ix.load().Len()
}

// NumEntries reports the occupied supercoordinates.
func (ix *Index) NumEntries() int {
	return ix.load().NumEntries()
}

// SnapshotVersion reports the version of the currently published table
// snapshot: 0 as built, advancing by one on every published mutation
// or compaction. Two calls returning the same version bracket a span
// in which readers saw one identical index.
func (ix *Index) SnapshotVersion() uint64 {
	return ix.load().Version()
}

// OverflowStats reports the disk-mode overflow-flush accounting: how
// many inserted transactions entered per-entry overflows, how many are
// currently pending a flush, and how many flushes ran for how long.
// All zero in memory mode.
func (ix *Index) OverflowStats() OverflowStats {
	return ix.load().OverflowStats()
}

// Signatures returns the item sets of the K signatures (read-only).
func (ix *Index) Signatures() [][]Item {
	return ix.load().Partition().Sets()
}

// Items returns the transaction stored under id. The returned slice is
// never mutated by the index, so it stays valid after later mutations.
func (ix *Index) Items(id TID) Transaction {
	return ix.load().Dataset().Get(id)
}

// Query runs a branch-and-bound k-NN search for the target under f.
// It takes no lock: the search runs against the table snapshot current
// when it started, unaffected by concurrent mutations.
//
// The context bounds the search: cancellation or a deadline aborts the
// branch-and-bound scan between entry visits and returns the partial
// result found so far with Result.Interrupted set and Certified false
// (unless the optimality certificate already held). A cancelled search
// is not an error; errors are reserved for invalid options.
func (ix *Index) Query(ctx context.Context, target Transaction, f SimilarityFunc, opt SearchOptions) (Result, error) {
	return ix.load().Query(ctx, target, f, opt.query())
}

// Nearest returns the single most similar transaction and its value.
// A search interrupted by context cancellation before finding any
// candidate returns the context's error.
func (ix *Index) Nearest(ctx context.Context, target Transaction, f SimilarityFunc) (TID, float64, error) {
	return ix.load().Nearest(ctx, target, f)
}

// RangeQuery returns all transactions meeting every (function,
// threshold) conjunct, lock-free against the current snapshot.
// Cancelling the context returns the matches found so far with
// RangeResult.Interrupted set.
func (ix *Index) RangeQuery(ctx context.Context, target Transaction, constraints []RangeConstraint, opt SearchOptions) (RangeResult, error) {
	return ix.load().RangeQuery(ctx, target, constraints, opt.ranged())
}

// MultiQuery finds the k transactions maximizing the average similarity
// to several targets. The context bounds the search exactly as in
// Query.
func (ix *Index) MultiQuery(ctx context.Context, targets []Transaction, f SimilarityFunc, opt SearchOptions) (Result, error) {
	return ix.load().MultiQuery(ctx, targets, f, opt.query())
}

// Explain returns the bound landscape a query for this target would
// see, without scanning any transactions — the tuning companion to
// Query.
func (ix *Index) Explain(target Transaction, f SimilarityFunc) Explanation {
	return ix.load().Explain(target, f)
}

// Explanation describes a query's per-entry optimistic bounds in
// visiting order.
type Explanation = core.Explanation

// DirectoryStats reports the entry directory's size and the
// process-wide bit-sliced ranking counters (see DESIGN.md §4h).
type DirectoryStats = core.DirectoryStats

// DirectoryStats snapshots the index's entry directory.
func (ix *Index) DirectoryStats() DirectoryStats {
	return ix.load().DirectoryStats()
}

// OverflowStats is the disk-mode overflow-flush accounting reported by
// (*Index).OverflowStats and (*ShardedIndex).OverflowStats; see
// IndexOptions.FlushThreshold.
type OverflowStats = core.OverflowStats

// Table exposes the underlying core table for advanced use (occupancy
// statistics, entry inspection). The returned table is the current
// published snapshot: it is immutable and stays fully readable forever
// (a later Insert/Delete/Compact publishes a NEW table rather than
// modifying this one), but it also stops reflecting the index from the
// next mutation on. Do not mutate it through the core API — the index
// owns the snapshot lineage.
func (ix *Index) Table() *core.Table {
	return ix.load()
}

// Close releases the index's disk resources: prefetch workers stop
// (and are waited for) and the page file, if any, is closed — for the
// current snapshot and any tables retired by Compact. Queries must
// have drained; an in-memory index without a store is a no-op.
func (ix *Index) Close() error {
	ix.wmu.Lock()
	defer ix.wmu.Unlock()
	err := ix.load().Close()
	for _, t := range ix.retired {
		if cerr := t.Close(); cerr != nil && err == nil {
			err = cerr
		}
	}
	ix.retired = nil
	return err
}
