package sigtable

import (
	"bytes"
	"context"
	"math/rand"
	"testing"
)

func testDataset(t testing.TB, n int, seed int64) *Dataset {
	t.Helper()
	g, err := NewGenerator(GeneratorConfig{UniverseSize: 200, NumItemsets: 300, Seed: seed})
	if err != nil {
		t.Fatal(err)
	}
	return g.Dataset(n)
}

func TestBuildIndexAndQuery(t *testing.T) {
	data := testDataset(t, 3000, 1)
	idx, err := BuildIndex(data, IndexOptions{SignatureCardinality: 10})
	if err != nil {
		t.Fatal(err)
	}
	if idx.K() != 10 || idx.Len() != 3000 {
		t.Fatalf("K=%d Len=%d", idx.K(), idx.Len())
	}
	if idx.NumEntries() == 0 || idx.NumEntries() > 1<<10 {
		t.Fatalf("NumEntries = %d", idx.NumEntries())
	}
	if len(idx.Signatures()) != 10 {
		t.Fatalf("Signatures = %d sets", len(idx.Signatures()))
	}

	target := data.Get(100)
	for _, f := range []SimilarityFunc{HammingSimilarity{}, Cosine{}, Jaccard{}} {
		res, err := idx.Query(context.Background(), target, f, QueryOptions{K: 5})
		if err != nil {
			t.Fatal(err)
		}
		want := ScanKNearest(data, target, f, 5)
		for i := range want {
			if res.Neighbors[i].Value != want[i].Value {
				t.Fatalf("index disagrees with oracle under %T", f)
			}
		}
	}

	tid, v, err := idx.Nearest(context.Background(), target, Dice{})
	if err != nil {
		t.Fatal(err)
	}
	if v != 1 || !data.Get(tid).Equal(target) {
		t.Fatalf("Nearest = (%d, %v)", tid, v)
	}
}

func TestBuildIndexAutoActivation(t *testing.T) {
	// Sparse defaults recommend r = 1; the index must behave exactly
	// like an explicit r = 1 build.
	data := testDataset(t, 2000, 21)
	auto, err := BuildIndex(data, IndexOptions{
		SignatureCardinality: 10,
		ActivationThreshold:  AutoActivation,
	})
	if err != nil {
		t.Fatal(err)
	}
	if got := auto.Table().ActivationThreshold(); got < 1 {
		t.Fatalf("auto threshold = %d", got)
	}
	target := data.Get(3)
	_, v, err := auto.Nearest(context.Background(), target, Jaccard{})
	if err != nil {
		t.Fatal(err)
	}
	if v != 1 {
		t.Fatalf("auto-threshold index missed the exact match: %v", v)
	}

	// Dense data must push the recommendation above 1.
	g, err := NewGenerator(GeneratorConfig{UniverseSize: 60, NumItemsets: 100, AvgTxnSize: 40, Seed: 22})
	if err != nil {
		t.Fatal(err)
	}
	dense := g.Dataset(1500)
	denseIdx, err := BuildIndex(dense, IndexOptions{
		SignatureCardinality: 6,
		ActivationThreshold:  AutoActivation,
	})
	if err != nil {
		t.Fatal(err)
	}
	if got := denseIdx.Table().ActivationThreshold(); got <= 1 {
		t.Fatalf("dense data auto threshold = %d, want > 1", got)
	}
}

func TestBuildIndexEmptyDataset(t *testing.T) {
	if _, err := BuildIndex(NewDataset(10), IndexOptions{}); err == nil {
		t.Fatal("empty dataset accepted")
	}
}

func TestBuildIndexExplicitPartition(t *testing.T) {
	data := NewDataset(4)
	data.Append(NewTransaction(0, 1))
	data.Append(NewTransaction(2, 3))
	idx, err := BuildIndex(data, IndexOptions{
		Partition: [][]Item{{0, 1}, {2, 3}},
	})
	if err != nil {
		t.Fatal(err)
	}
	if idx.K() != 2 {
		t.Fatalf("K = %d", idx.K())
	}

	// An invalid partition must be rejected.
	if _, err := BuildIndex(data, IndexOptions{Partition: [][]Item{{0, 1}}}); err == nil {
		t.Fatal("incomplete partition accepted")
	}
}

func TestBuildIndexDiskMode(t *testing.T) {
	data := testDataset(t, 2000, 2)
	idx, err := BuildIndex(data, IndexOptions{
		SignatureCardinality: 8,
		PageSize:             512,
		BufferPoolPages:      64,
	})
	if err != nil {
		t.Fatal(err)
	}
	res, err := idx.Query(context.Background(), data.Get(7), Cosine{}, QueryOptions{K: 1})
	if err != nil {
		t.Fatal(err)
	}
	if res.PagesRead == 0 {
		t.Fatal("disk mode counted no page reads")
	}
	_, want := ScanNearest(data, data.Get(7), Cosine{})
	if res.Neighbors[0].Value != want {
		t.Fatal("disk-mode answer differs from oracle")
	}
}

func TestRangeQueryPublic(t *testing.T) {
	data := testDataset(t, 2000, 3)
	idx, err := BuildIndex(data, IndexOptions{SignatureCardinality: 10})
	if err != nil {
		t.Fatal(err)
	}
	target := data.Get(55)
	res, err := idx.RangeQuery(context.Background(), target, []RangeConstraint{
		{F: MatchSimilarity{}, Threshold: float64(target.Len())}, // exact superset matches
	}, RangeOptions{})
	if err != nil {
		t.Fatal(err)
	}
	found := false
	for _, id := range res.TIDs {
		if id == 55 {
			found = true
		}
		if Match(target, data.Get(id)) < target.Len() {
			t.Fatalf("TID %d does not satisfy the constraint", id)
		}
	}
	if !found {
		t.Fatal("target's own transaction not in range result")
	}
}

func TestMultiQueryPublic(t *testing.T) {
	data := testDataset(t, 2000, 4)
	idx, err := BuildIndex(data, IndexOptions{SignatureCardinality: 10})
	if err != nil {
		t.Fatal(err)
	}
	targets := []Transaction{data.Get(1), data.Get(2)}
	res, err := idx.MultiQuery(context.Background(), targets, Jaccard{}, QueryOptions{K: 3})
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Neighbors) != 3 {
		t.Fatalf("got %d neighbors", len(res.Neighbors))
	}
}

func TestSimilarityByNamePublic(t *testing.T) {
	if _, err := SimilarityByName("cosine"); err != nil {
		t.Fatal(err)
	}
	if _, err := SimilarityByName("nope"); err == nil {
		t.Fatal("unknown similarity accepted")
	}
}

// badSim violates monotonicity; CheckMonotone must reject it through
// the public API.
type badSim struct{}

func (badSim) Score(x, y int) float64 { return float64(y - x) }
func (badSim) Name() string           { return "bad" }

func TestCheckMonotonePublic(t *testing.T) {
	if err := CheckMonotone(badSim{}, 10, 10); err == nil {
		t.Fatal("anti-monotone function passed")
	}
	if err := CheckMonotone(Jaccard{}, 10, 10); err != nil {
		t.Fatal(err)
	}
}

func TestDatasetRoundTripPublic(t *testing.T) {
	data := testDataset(t, 500, 5)
	var buf bytes.Buffer
	if _, err := data.WriteTo(&buf); err != nil {
		t.Fatal(err)
	}
	got, err := ReadDataset(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if got.Len() != data.Len() {
		t.Fatalf("round trip lost transactions: %d vs %d", got.Len(), data.Len())
	}
}

func TestInvertedIndexBaselinePublic(t *testing.T) {
	data := testDataset(t, 2000, 6)
	inv := BuildInvertedIndex(data, InvertedIndexOptions{})
	target := data.Get(9)
	cands, st := inv.KNearest(target, MatchSimilarity{}, 3)
	if len(cands) != 3 {
		t.Fatalf("got %d candidates", len(cands))
	}
	if st.Fraction <= 0 || st.Fraction > 1 {
		t.Fatalf("access fraction = %v", st.Fraction)
	}
	_, want := ScanNearest(data, target, MatchSimilarity{})
	if cands[0].Value != want {
		t.Fatal("inverted index disagrees with oracle on match similarity")
	}
}

// TestEarlyTerminationTradeoff exercises the public early-termination
// path: tighter budgets scan no more than looser ones and never beat
// the optimum.
func TestEarlyTerminationTradeoffPublic(t *testing.T) {
	data := testDataset(t, 5000, 7)
	idx, err := BuildIndex(data, IndexOptions{SignatureCardinality: 12})
	if err != nil {
		t.Fatal(err)
	}
	rng := rand.New(rand.NewSource(8))
	for q := 0; q < 5; q++ {
		items := make([]Item, 1+rng.Intn(8))
		for j := range items {
			items[j] = Item(rng.Intn(200))
		}
		target := NewTransaction(items...)
		_, optimum := ScanNearest(data, target, MatchHammingRatio{})

		prevScanned := 0
		for _, frac := range []float64{0.005, 0.02, 0.1, 1} {
			res, err := idx.Query(context.Background(), target, MatchHammingRatio{}, QueryOptions{K: 1, MaxScanFraction: frac})
			if err != nil {
				t.Fatal(err)
			}
			if res.Neighbors[0].Value > optimum {
				t.Fatal("early answer above optimum")
			}
			if res.Scanned < prevScanned {
				// Looser budgets may stop early via pruning, but can
				// never be forced below a tighter budget's scan count
				// by the budget itself. Both runs prune identically, so
				// scanned is non-decreasing in the budget.
				t.Fatalf("scanned decreased as budget grew: %d -> %d", prevScanned, res.Scanned)
			}
			prevScanned = res.Scanned
		}
	}
}
