package sigtable

import (
	"context"
	"math/rand"
	"path/filepath"
	"runtime"
	"sort"
	"sync"
	"sync/atomic"
	"testing"

	"sigtable/internal/core"
)

// snapshotOp is one step of a deterministic mutation script: an insert
// of a generated transaction, or a delete of a TID known to be live at
// that point. Every op publishes exactly one snapshot, so version v
// corresponds to the script prefix ops[:v-v0].
type snapshotOp struct {
	insert Transaction
	delete TID
	isDel  bool
}

// snapshotScript builds a deterministic op sequence over an index
// seeded with n transactions: deletes target distinct initial TIDs
// (always live when reached), inserts are regenerable from the seed.
func snapshotScript(n, ops int, seed int64, universe int) []snapshotOp {
	rng := rand.New(rand.NewSource(seed))
	script := make([]snapshotOp, ops)
	nextDel := TID(0)
	for i := range script {
		if i%5 == 4 && int(nextDel) < n {
			script[i] = snapshotOp{isDel: true, delete: nextDel}
			nextDel++
		} else {
			items := make([]Item, 0, 6)
			for len(items) < 3 {
				items = append(items, Item(rng.Intn(universe)))
			}
			script[i] = snapshotOp{insert: NewTransaction(items...)}
		}
	}
	return script
}

// TestSnapshotByteIdentity is the snapshot-isolation property test:
// while a writer applies a deterministic mutation script, concurrent
// readers pin snapshots mid-flight and query them; afterwards each
// captured result must byte-match a serialized replay of the script
// prefix the snapshot's version identifies. Runs across the memory,
// disk-v1 and disk-v2 storage modes, with a small flush threshold so
// captures straddle overflow flushes.
func TestSnapshotByteIdentity(t *testing.T) {
	variants := []struct {
		name string
		opt  IndexOptions
	}{
		{"memory", IndexOptions{SignatureCardinality: 8}},
		{"disk-v1", IndexOptions{SignatureCardinality: 8, PageSize: 256, PageFormat: PageFormatV1, FlushThreshold: 4, DecodeCacheBytes: 1 << 18}},
		{"disk-v2", IndexOptions{SignatureCardinality: 8, PageSize: 256, PageFormat: PageFormatV2, FlushThreshold: 4, DecodeCacheBytes: 1 << 18}},
	}
	const (
		n       = 400
		ops     = 250
		readers = 4
	)
	for _, v := range variants {
		t.Run(v.name, func(t *testing.T) {
			data := testDataset(t, n, 31)
			idx, err := BuildIndex(data, v.opt)
			if err != nil {
				t.Fatal(err)
			}
			script := snapshotScript(n, ops, 99, data.UniverseSize())
			v0 := idx.Table().Version()

			type capture struct {
				version uint64
				target  Transaction
				res     core.Result
			}
			captures := make([][]capture, readers)
			var running atomic.Bool
			running.Store(true)
			var wg sync.WaitGroup
			fail := make(chan error, readers)
			for w := 0; w < readers; w++ {
				wg.Add(1)
				go func(w int) {
					defer wg.Done()
					rng := rand.New(rand.NewSource(int64(500 + w)))
					for running.Load() || len(captures[w]) < 5 {
						items := make([]Item, 0, 6)
						for len(items) < 3 {
							items = append(items, Item(rng.Intn(data.UniverseSize())))
						}
						target := NewTransaction(items...)
						// Pin one snapshot; version and result both come
						// from the same immutable table.
						snap := idx.Table()
						res, err := snap.Query(context.Background(), target, Jaccard{}, core.QueryOptions{K: 4, Parallelism: 1})
						if err != nil {
							fail <- err
							return
						}
						captures[w] = append(captures[w], capture{version: snap.Version(), target: target, res: res})
					}
				}(w)
			}

			for _, op := range script {
				if op.isDel {
					if !idx.Delete(op.delete) {
						t.Errorf("script delete of live TID %d refused", op.delete)
					}
				} else {
					idx.Insert(op.insert)
				}
			}
			running.Store(false)
			wg.Wait()
			close(fail)
			for err := range fail {
				t.Fatal(err)
			}
			if got := idx.SnapshotVersion(); got != v0+uint64(ops) {
				t.Fatalf("snapshot version %d after %d ops (started at %d)", got, ops, v0)
			}

			// Serialized replay: a fresh index over a regenerated copy of
			// the seed dataset, advanced through the same script. Each
			// capture's version names the prefix it must match.
			var all []capture
			for _, c := range captures {
				all = append(all, c...)
			}
			sort.Slice(all, func(i, j int) bool { return all[i].version < all[j].version })
			replayData := testDataset(t, n, 31)
			replay, err := BuildIndex(replayData, v.opt)
			if err != nil {
				t.Fatal(err)
			}
			defer replay.Close()
			applied := uint64(0)
			for _, c := range all {
				for applied < c.version-v0 {
					op := script[applied]
					if op.isDel {
						replay.Delete(op.delete)
					} else {
						replay.Insert(op.insert)
					}
					applied++
				}
				want, err := replay.Table().Query(context.Background(), c.target, Jaccard{}, core.QueryOptions{K: 4, Parallelism: 1})
				if err != nil {
					t.Fatal(err)
				}
				if c.res.Scanned != want.Scanned || c.res.EntriesScanned != want.EntriesScanned ||
					c.res.EntriesPruned != want.EntriesPruned || c.res.Certified != want.Certified ||
					len(c.res.Neighbors) != len(want.Neighbors) {
					t.Fatalf("version %d: captured cost %+v, replay %+v", c.version, c.res, want)
				}
				for i := range want.Neighbors {
					if c.res.Neighbors[i] != want.Neighbors[i] {
						t.Fatalf("version %d: captured neighbors %v, replay %v",
							c.version, c.res.Neighbors, want.Neighbors)
					}
				}
			}
			if err := idx.Validate(); err != nil {
				t.Fatal(err)
			}
			if err := idx.Close(); err != nil {
				t.Fatal(err)
			}
		})
	}
}

// TestSnapshotShardedMatchesSingle applies the same mutation script to
// a single-table index and a sharded one and checks the engines answer
// identically afterwards — the cross-engine half of the snapshot
// byte-identity property.
func TestSnapshotShardedMatchesSingle(t *testing.T) {
	const n = 400
	data := testDataset(t, n, 33)
	shardedData := testDataset(t, n, 33)
	single, err := BuildIndex(data, IndexOptions{SignatureCardinality: 8, PageSize: 256, FlushThreshold: 4})
	if err != nil {
		t.Fatal(err)
	}
	sharded, err := NewSharded(shardedData, IndexOptions{SignatureCardinality: 8, PageSize: 256, FlushThreshold: 4, Shards: 4})
	if err != nil {
		t.Fatal(err)
	}
	for _, op := range snapshotScript(n, 200, 42, data.UniverseSize()) {
		if op.isDel {
			a, b := single.Delete(op.delete), sharded.Delete(op.delete)
			if a != b {
				t.Fatalf("Delete(%d): single=%v sharded=%v", op.delete, a, b)
			}
		} else {
			a, b := single.Insert(op.insert), sharded.Insert(op.insert)
			if a != b {
				t.Fatalf("insert TIDs diverge: %d vs %d", a, b)
			}
		}
	}
	if single.SnapshotVersion() == 0 || sharded.SnapshotVersion() == 0 {
		t.Fatal("snapshot versions did not advance")
	}

	rng := rand.New(rand.NewSource(7))
	for q := 0; q < 25; q++ {
		items := make([]Item, 0, 6)
		for len(items) < 3 {
			items = append(items, Item(rng.Intn(data.UniverseSize())))
		}
		target := NewTransaction(items...)
		a, err := single.Query(context.Background(), target, Jaccard{}, SearchOptions{K: 5, Parallelism: 1})
		if err != nil {
			t.Fatal(err)
		}
		b, err := sharded.Query(context.Background(), target, Jaccard{}, SearchOptions{K: 5})
		if err != nil {
			t.Fatal(err)
		}
		if len(a.Neighbors) != len(b.Neighbors) {
			t.Fatalf("neighbor counts diverge: %d vs %d", len(a.Neighbors), len(b.Neighbors))
		}
		for i := range a.Neighbors {
			if a.Neighbors[i] != b.Neighbors[i] {
				t.Fatalf("engines diverge after snapshot mutations: %v vs %v", a.Neighbors, b.Neighbors)
			}
		}
	}
	if err := single.Validate(); err != nil {
		t.Fatal(err)
	}
	if err := sharded.Validate(); err != nil {
		t.Fatal(err)
	}
}

// TestSnapshotHammer is the race-detector proof for the snapshot
// engine (`make race-snapshot` runs it): queries, inserts, deletes,
// threshold-triggered overflow flushes and full compactions all race
// on one disk-backed index with prefetch workers attached, then the
// index is validated and closed with no goroutine left behind.
func TestSnapshotHammer(t *testing.T) {
	baseline := runtime.NumGoroutine()
	data := testDataset(t, 400, 35)
	idx, err := BuildIndex(data, IndexOptions{
		SignatureCardinality: 8,
		PageSize:             256,
		PageFile:             filepath.Join(t.TempDir(), "pages.dat"),
		BufferPoolPages:      64,
		DecodeCacheBytes:     1 << 18,
		PrefetchWorkers:      2,
		FlushThreshold:       4,
	})
	if err != nil {
		t.Fatal(err)
	}
	universe := data.UniverseSize()
	newTarget := func(rng *rand.Rand) Transaction {
		items := make([]Item, 0, 8)
		for len(items) < 3 {
			items = append(items, Item(rng.Intn(universe)))
		}
		return NewTransaction(items...)
	}

	const (
		queryWorkers   = 4
		queriesPerGoro = 40
		inserts        = 200
		deleteAttempts = 100
		compactions    = 2
	)
	var wg sync.WaitGroup
	fail := make(chan error, queryWorkers+3)

	for w := 0; w < queryWorkers; w++ {
		wg.Add(1)
		go func(seed int64) {
			defer wg.Done()
			rng := rand.New(rand.NewSource(seed))
			for i := 0; i < queriesPerGoro; i++ {
				target := newTarget(rng)
				switch i % 3 {
				case 0:
					// Repeat so the second run reads cached decodes the
					// mutators are concurrently invalidating per list.
					for j := 0; j < 2; j++ {
						if _, err := idx.Query(context.Background(), target, Jaccard{}, SearchOptions{K: 3}); err != nil {
							fail <- err
							return
						}
					}
				case 1:
					if _, err := idx.RangeQuery(context.Background(), target,
						[]RangeConstraint{{F: MatchSimilarity{}, Threshold: 1}}, SearchOptions{Parallelism: 2}); err != nil {
						fail <- err
						return
					}
				case 2:
					if _, err := idx.BatchQuery(context.Background(),
						[]Transaction{target, newTarget(rng), target}, Cosine{},
						SearchOptions{K: 2, SharedScan: true, Parallelism: 2}); err != nil {
						fail <- err
						return
					}
				}
			}
		}(int64(600 + w))
	}

	wg.Add(1)
	go func() {
		defer wg.Done()
		rng := rand.New(rand.NewSource(61))
		// Insert duplicates of a few hot transactions so single entries
		// cross the flush threshold repeatedly under load.
		hot := []Transaction{newTarget(rng), newTarget(rng)}
		for i := 0; i < inserts; i++ {
			if i%2 == 0 {
				idx.Insert(hot[i%len(hot)])
			} else {
				idx.Insert(newTarget(rng))
			}
		}
	}()

	wg.Add(1)
	go func() {
		defer wg.Done()
		rng := rand.New(rand.NewSource(62))
		for i := 0; i < deleteAttempts; i++ {
			idx.Delete(TID(rng.Intn(400)))
		}
	}()

	wg.Add(1)
	go func() {
		defer wg.Done()
		for i := 0; i < compactions; i++ {
			if err := idx.Compact(1); err != nil {
				fail <- err
				return
			}
		}
	}()

	wg.Wait()
	close(fail)
	for err := range fail {
		t.Fatal(err)
	}

	if st := idx.OverflowStats(); st.Transactions == 0 {
		t.Fatalf("hammer never exercised the overflow path: %+v", st)
	}
	if idx.SnapshotVersion() == 0 {
		t.Fatal("snapshot version never advanced")
	}
	if err := idx.Validate(); err != nil {
		t.Fatalf("index invalid after hammering: %v", err)
	}
	if err := idx.Close(); err != nil {
		t.Fatal(err)
	}
	waitGoroutines(t, "after Close", baseline)
}
